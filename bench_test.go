package dehealth

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark prints
// its measured rows/series once, so a bench run reproduces the full
// experimental section at the configured scale. Scale is kept laptop-sized;
// cmd/experiments exposes the same experiments with configurable sizes.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dehealth/internal/core"
	"dehealth/internal/eval"
	"dehealth/internal/features"
	"dehealth/internal/index"
	"dehealth/internal/shard"
	"dehealth/internal/similarity"
	"dehealth/internal/stylometry"
	"dehealth/internal/synth"
)

// benchScale is the corpus scale used by the figure benchmarks.
var benchScale = eval.Scale{WebMDUsers: 800, HBUsers: 1600, OverlapFrac: 0.2, Seed: 1902}

var (
	corporaOnce sync.Once
	corpora     *eval.Corpora
)

func benchCorpora() *eval.Corpora {
	corporaOnce.Do(func() { corpora = eval.GenerateCorpora(benchScale) })
	return corpora
}

var printed sync.Map

// printOnce emits an experiment's output a single time across bench runs.
func printOnce(key, out string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", out)
	}
}

// BenchmarkFig1PostsCDF regenerates Fig.1: CDF of users by post count.
func BenchmarkFig1PostsCDF(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, table := eval.Fig1(c)
		if i == 0 {
			printOnce("fig1", eval.RenderSeries("Fig.1 CDF of users vs number of posts", series)+"\n"+table.String())
		}
	}
}

// BenchmarkFig2PostLength regenerates Fig.2: post length distribution.
func BenchmarkFig2PostLength(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, table := eval.Fig2(c)
		if i == 0 {
			printOnce("fig2", eval.RenderSeries("Fig.2 post length distribution", series)+"\n"+table.String())
		}
	}
}

// BenchmarkTable1Features regenerates Table I: the stylometric feature
// inventory.
func BenchmarkTable1Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.Table1()
		if i == 0 {
			printOnce("table1", t.String())
		}
	}
}

// BenchmarkFig7DegreeDist regenerates Fig.7: correlation-graph degree
// distributions.
func BenchmarkFig7DegreeDist(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, table := eval.Fig7(c)
		if i == 0 {
			printOnce("fig7", eval.RenderSeries("Fig.7 degree distribution CDF", series)+"\n"+table.String())
		}
	}
}

// BenchmarkFig8Communities regenerates Fig.8: community structure under
// degree thresholds.
func BenchmarkFig8Communities(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := eval.Fig8(c)
		if i == 0 {
			printOnce("fig8", t.String())
		}
	}
}

// BenchmarkFig3ClosedTopK regenerates Fig.3: closed-world Top-K DA success
// CDFs for 50/70/90% auxiliary splits on both forums.
func BenchmarkFig3ClosedTopK(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := eval.Fig3(c, []int{1, 5, 10, 20, 50, 100, 200, 500, 1000})
		if i == 0 {
			printOnce("fig3", eval.RenderSeries("Fig.3 closed-world Top-K DA success CDF", series))
		}
	}
}

// BenchmarkFig5OpenTopK regenerates Fig.5: open-world Top-K DA success CDFs
// for 50/70/90% overlap ratios.
func BenchmarkFig5OpenTopK(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := eval.Fig5(c, []int{1, 5, 10, 20, 50, 100, 200, 500, 1000})
		if i == 0 {
			printOnce("fig5", eval.RenderSeries("Fig.5 open-world Top-K DA success CDF", series))
		}
	}
}

// BenchmarkFig4ClosedRefined regenerates Fig.4: closed-world refined DA
// accuracy, Stylometry vs De-Health (K = 5..20) under KNN/SMO.
func BenchmarkFig4ClosedRefined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.Fig4(eval.RefinedConfig{Users: 50, Runs: 1, Seed: 1902, MaxBigrams: 100})
		if i == 0 {
			printOnce("fig4", t.String())
		}
	}
}

// BenchmarkFig6OpenRefined regenerates Fig.6: open-world refined DA accuracy
// and FP rate with mean verification (r = 0.25).
func BenchmarkFig6OpenRefined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// 60 users per side keeps the bench under a few minutes; the paper's
		// 100-user setting is cmd/experiments -run fig6.
		acc, fp := eval.Fig6(eval.RefinedConfig{Users: 60, Runs: 1, Seed: 1902, MaxBigrams: 100})
		if i == 0 {
			printOnce("fig6", acc.String()+"\n"+fp.String())
		}
	}
}

// BenchmarkLinkageAttack regenerates the §VI linkage-attack results table.
func BenchmarkLinkageAttack(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := eval.LinkageExperiment(c)
		if i == 0 {
			printOnce("linkage", t.String())
		}
	}
}

// BenchmarkTheoryBounds regenerates the §IV bounds-vs-simulation table.
func BenchmarkTheoryBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.TheoryExperiment(5000)
		if i == 0 {
			printOnce("theory", t.String())
		}
	}
}

// BenchmarkAttackPipeline measures the full two-phase attack end to end on
// a small closed-world split (the operation a library user pays for).
func BenchmarkAttackPipeline(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 120, HBUsers: 120, Seed: 77})
	split := SplitClosedWorld(w.WebMD, 0.5, 78)
	opt := DefaultOptions()
	opt.K = 5
	opt.Classifier = KNN
	opt.MaxBigrams = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Attack(split.Anon, split.Aux, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWeights sweeps the similarity-weight split (c1, c2, c3),
// the design choice behind the paper's default (0.05, 0.05, 0.9).
func BenchmarkAblationWeights(b *testing.B) {
	c := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := eval.AblationWeights(c, 50)
		if i == 0 {
			printOnce("ablation-weights", t.String())
		}
	}
}

// BenchmarkAblationSelection compares direct selection against graph
// matching for Top-K candidate sets.
func BenchmarkAblationSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.AblationSelection(1902)
		if i == 0 {
			printOnce("ablation-selection", t.String())
		}
	}
}

// BenchmarkAblationFilter measures the Algorithm 2 filter's effect on
// candidate sets and rejections.
func BenchmarkAblationFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.AblationFilter(1902)
		if i == 0 {
			printOnce("ablation-filter", t.String())
		}
	}
}

// BenchmarkFeatureStore measures feature-store construction — the dominant
// cost of an attack — serial versus worker-pool parallel, on one forum's
// full post set.
func BenchmarkFeatureStore(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 150, HBUsers: 150, Seed: 41})
	ex := features.NewExtractor(w.WebMD.Texts(), 100)
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // all CPUs
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.Build(w.WebMD, ex, features.Options{Workers: bench.workers})
			}
		})
	}
}

// BenchmarkExperimentGridReuse contrasts the seed architecture (rebuild the
// pipeline — and re-extract every feature — per grid point) with the shared
// feature store (extract once, derive a pipeline per grid point). The grid
// is a 4-point similarity-weight sweep with a Top-5 selection each, the
// shape of every eval experiment loop.
func BenchmarkExperimentGridReuse(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 100, HBUsers: 100, Seed: 42})
	split := SplitClosedWorld(w.WebMD, 0.5, 43)
	grid := []similarity.Config{
		{C1: 1, C2: 0, C3: 0, Landmarks: 5},
		{C1: 0, C2: 1, C3: 0, Landmarks: 5},
		{C1: 0, C2: 0, C3: 1, Landmarks: 5},
		{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5},
	}
	b.Run("rebuild-per-config", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range grid {
				p := core.NewPipeline(split.Anon, split.Aux, cfg, 50)
				p.TopK(5, core.DirectSelection, nil)
			}
		}
	})
	b.Run("shared-store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
			base := core.NewPipelineFromStore(anonS, auxS, grid[0])
			for _, cfg := range grid {
				p := base.WithSimilarity(cfg)
				p.TopK(5, core.DirectSelection, nil)
			}
		}
	})
}

// BenchmarkQueryUser measures the online single-user query path against
// the full-matrix Top-K phase it replaces, and asserts its allocation
// guarantee: per query, the bounded-heap path must stay far below one
// similarity-matrix row (|aux| float64s), i.e. it never materializes rows.
func BenchmarkQueryUser(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 400, HBUsers: 400, Seed: 91})
	split := SplitClosedWorld(w.WebMD, 0.5, 92)
	opt := DefaultOptions()
	opt.MaxBigrams = 100
	opt.Landmarks = 10
	pw := PrepareWorld(split.Anon, split.Aux, opt)
	anonN, auxN := pw.Sizes()
	if _, err := pw.QueryUser(0, 10, opt); err != nil { // warm the pipeline cache
		b.Fatal(err)
	}

	b.Run("query-user", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pw.QueryUser(i%anonN, 10, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-topk", func(b *testing.B) {
		p := pw.pipeline(opt.normalized().simConfig())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.TopK(10, core.DirectSelection, nil)
		}
	})

	// Allocation assertion: mean heap bytes per query must stay below one
	// similarity-matrix row. A regression that materializes the row (or the
	// matrix) fails the benchmark rather than silently shipping.
	const rounds = 200
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, err := pw.QueryUser(i%anonN, 10, opt); err != nil {
			b.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := (after.TotalAlloc - before.TotalAlloc) / rounds
	if rowBytes := uint64(auxN) * 8; perOp >= rowBytes {
		b.Fatalf("QueryUser allocates %d B/op, not below one similarity row (%d B): the no-matrix guarantee is broken", perOp, rowBytes)
	}
}

// BenchmarkQueryUserSharded measures the partition-parallel single-row
// query path against the single-shard engine it generalizes (the PR 2
// serving baseline): the same prepared stores drive a pipeline with one
// shard and one with a shard per CPU, and the per-mode throughput plus the
// sharded/unsharded speedup land in BENCH_sharding.json. On a multi-core
// runner the fan-out/merge path should clear 1.5x over shards-1; on a
// single-core machine the two modes are equivalent work (gomaxprocs is
// recorded so the artifact is interpretable either way).
func BenchmarkQueryUserSharded(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 600, HBUsers: 600, Seed: 97})
	split := SplitClosedWorld(w.WebMD, 0.5, 98)
	opt := DefaultOptions()
	opt.MaxBigrams = 100
	opt.Landmarks = 10
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, opt.MaxBigrams, features.Options{})
	cfg := opt.normalized().simConfig()

	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	} else {
		counts = append(counts, 2) // keep the fan-out/merge path exercised
	}
	qps := map[string]float64{}
	for _, n := range counts {
		p := core.NewShardedPipelineFromStore(anonS, auxS, cfg, n)
		anonN := p.G1.NumNodes()
		name := fmt.Sprintf("shards-%d", n)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				p.QueryUser(i%anonN, 10)
			}
			elapsed := time.Since(start)
			rate := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(rate, "qps")
			if prev, ok := qps[name]; !ok || rate > prev {
				qps[name] = rate
			}
		})
	}

	speedup := 0.0
	if base := qps["shards-1"]; base > 0 {
		speedup = qps[fmt.Sprintf("shards-%d", counts[len(counts)-1])] / base
	}
	// On a single-core environment the fan-out/merge path cannot win —
	// both modes do the same scoring work and the sharded one adds merge
	// overhead, so ~0.95x is the expected reading, not a regression. Label
	// the artifact so the number is interpretable without the runner's
	// specs at hand (see README "Scaling out").
	singleCore := runtime.GOMAXPROCS(0) == 1
	interpretation := "multi-core: speedup is the parallel fan-out/merge win over the single-shard scan"
	if singleCore {
		interpretation = "single-core environment: no parallelism is available, so speedup ~<=1.0x measures fan-out/merge overhead only; run on a multi-core machine to measure the sharding win"
	}
	summary := map[string]any{
		"benchmark":      "sharding",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    singleCore,
		"interpretation": interpretation,
		"world":          map[string]int{"anon_users": split.Anon.NumUsers(), "aux_users": split.Aux.NumUsers()},
		"qps":            qps,
		"speedup":        speedup,
		"baseline":       "shards-1 is the PR 2 single-shard bounded-heap query engine",
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_sharding.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_sharding.json: %v", err)
		}
	}
}

// BenchmarkQueryUserPruned measures the candidate-pruned single-row query
// path against the full per-shard scan it avoids, on a synthetic aux
// world with sparse attribute overlap, and writes a BENCH_prune.json
// summary: per-mode qps, the speedup, the candidate-set size distribution
// and the pruning counters. Parity is asserted inline — the pruned
// candidates must be bit-identical to the full scan — so the artifact can
// never report a speedup obtained by changing results.
func BenchmarkQueryUserPruned(b *testing.B) {
	const (
		auxUsers  = 4000
		anonUsers = 150
		community = 40
		attrDim   = 512
	)
	g1 := synth.SparseAttrUDA(anonUsers, community, attrDim, 1201)
	g2 := synth.SparseAttrUDA(auxUsers, community, attrDim, 1202)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	base := similarity.NewScorer(g1, g2, cfg)
	full := shard.New(base, g2, nil, 1)
	st := &index.Stats{}
	pruned := shard.New(base, g2, nil, 1).WithPruning(index.Config{}, st)

	// Candidate-set size distribution over every anonymized user.
	x := pruned.Shards()[0].Index
	sizes := make([]int, anonUsers)
	for u := 0; u < anonUsers; u++ {
		sizes[u] = x.CandidateCount(base.AnonAttrs(u))
	}
	sort.Ints(sizes)
	pct := func(p float64) int { return sizes[int(p*float64(len(sizes)-1))] }

	for u := 0; u < anonUsers; u += 17 { // parity spot-check, off the timer
		got, want := pruned.QueryUser(u, 10), full.QueryUser(u, 10)
		if len(got) != len(want) {
			b.Fatalf("user %d: pruned %d candidates, full %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				b.Fatalf("user %d candidate %d: pruned %+v, full %+v", u, i, got[i], want[i])
			}
		}
	}

	qps := map[string]float64{}
	for _, mode := range []struct {
		name  string
		world *shard.World
	}{
		{"full-scan", full},
		{"pruned", pruned},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				mode.world.QueryUser(i%anonUsers, 10)
			}
			rate := float64(b.N) / time.Since(start).Seconds()
			b.ReportMetric(rate, "qps")
			if prev, ok := qps[mode.name]; !ok || rate > prev {
				qps[mode.name] = rate
			}
		})
	}

	// Dense regime: one community spanning the whole population, so every
	// query's candidate set is essentially the window and no band skip can
	// certify — the adversarial case for the banded engine, measured so
	// its bookkeeping overhead (postings gather, marking, scattered
	// rescore, fruitless bound checks) against the plain blocked scan is
	// tracked per commit rather than assumed.
	const denseUsers = 2000
	dg1 := synth.SparseAttrUDA(anonUsers, denseUsers, attrDim, 1203)
	dg2 := synth.SparseAttrUDA(denseUsers, denseUsers, attrDim, 1204)
	dbase := similarity.NewScorer(dg1, dg2, cfg)
	dfull := shard.New(dbase, dg2, nil, 1)
	dst := &index.Stats{}
	dpruned := shard.New(dbase, dg2, nil, 1).WithPruning(index.Config{}, dst)
	for u := 0; u < anonUsers; u += 29 { // parity spot-check, off the timer
		got, want := dpruned.QueryUser(u, 10), dfull.QueryUser(u, 10)
		for i := range want {
			if got[i] != want[i] {
				b.Fatalf("dense user %d candidate %d: pruned %+v, full %+v", u, i, got[i], want[i])
			}
		}
	}
	for _, mode := range []struct {
		name  string
		world *shard.World
	}{
		{"dense-full-scan", dfull},
		{"dense-pruned", dpruned},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				mode.world.QueryUser(i%anonUsers, 10)
			}
			rate := float64(b.N) / time.Since(start).Seconds()
			b.ReportMetric(rate, "qps")
			if prev, ok := qps[mode.name]; !ok || rate > prev {
				qps[mode.name] = rate
			}
		})
	}

	speedup := 0.0
	if qps["full-scan"] > 0 {
		speedup = qps["pruned"] / qps["full-scan"]
	}
	denseSpeedup := 0.0
	if qps["dense-full-scan"] > 0 {
		denseSpeedup = qps["dense-pruned"] / qps["dense-full-scan"]
	}
	stats := st.Snapshot()
	dstats := dst.Snapshot()
	summary := map[string]any{
		"benchmark":      "prune",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    runtime.GOMAXPROCS(0) == 1,
		"interpretation": "pruning is a work-reduction win (index-certified candidate skipping), not parallelism, so the sparse-world speedup holds on single-core runners; the dense block reports the bookkeeping-overhead floor in the regime with nothing to skip",
		"world": map[string]int{
			"anon_users": anonUsers, "aux_users": auxUsers,
			"attr_dim": attrDim, "community": community,
		},
		"qps":     qps,
		"speedup": speedup,
		"candidate_set_size": map[string]any{
			"min": sizes[0], "p50": pct(0.5), "p90": pct(0.9), "max": sizes[len(sizes)-1],
			"aux_users": auxUsers,
		},
		"prune_counters": map[string]int64{
			"queries": stats.Queries, "fallbacks": stats.Fallbacks,
			"dense_queries": stats.DenseQueries,
			"candidates":    stats.Candidates, "scanned": stats.Scanned, "skipped": stats.Skipped,
			"bands_checked": stats.BandsChecked, "bands_skipped": stats.BandsSkipped,
		},
		"dense": map[string]any{
			"world":   map[string]int{"anon_users": anonUsers, "aux_users": denseUsers, "community": denseUsers},
			"speedup": denseSpeedup,
			"prune_counters": map[string]int64{
				"queries": dstats.Queries, "dense_queries": dstats.DenseQueries,
				"candidates": dstats.Candidates, "scanned": dstats.Scanned, "skipped": dstats.Skipped,
				"bands_checked": dstats.BandsChecked, "bands_skipped": dstats.BandsSkipped,
			},
			"interpretation": "single-community world: candidate set ~= window and no band skip certifies, so speedup ~<=1.0x measures the banded engine's bookkeeping overhead in the regime that used to fall back — the floor of the pruning trade, not its win",
		},
		"baseline": "full-scan is the per-shard bounded-heap scan over every aux user; pruned rescoring is guaranteed bit-identical (fallback on uncertifiable top-K)",
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_prune.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_prune.json: %v", err)
		}
	}
}

// BenchmarkQueryUserApprox measures the approximate retrieval tier
// (max-score/WAND cursors + exact rescore) against the exact full scan on
// the two regimes of BenchmarkQueryUserPruned: the sparse-overlap world
// where exact pruning already wins, and the dense single-community world
// where exact pruning floors at a full rescore — the regime the tier
// exists for. Theta and the rescore budget are swept on the dense world
// and recall@10 against the exact top-10 is computed off the timer for
// every mode, so the artifact reports speedup and recall side by side;
// the degenerate configuration (Theta 1, unbounded budget) is asserted
// bit-identical to the exact scan before any timing, so BENCH_recall.json
// can never claim an exactness it does not have.
func BenchmarkQueryUserApprox(b *testing.B) {
	const (
		anonUsers = 150
		sparseAux = 4000
		community = 40
		attrDim   = 512
		denseAux  = 2000
		k         = 10
	)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}

	type world struct {
		full   *shard.World
		approx *shard.World
		stats  *index.ApproxStats
	}
	mk := func(auxN, comm int, seed int64) world {
		g1 := synth.SparseAttrUDA(anonUsers, comm, attrDim, seed)
		g2 := synth.SparseAttrUDA(auxN, comm, attrDim, seed+1)
		base := similarity.NewScorer(g1, g2, cfg)
		st := &index.ApproxStats{}
		return world{
			full:   shard.New(base, g2, nil, 1),
			approx: shard.New(base, g2, nil, 1).WithApprox(index.Config{}, st),
			stats:  st,
		}
	}
	sparse := mk(sparseAux, community, 1201)
	dense := mk(denseAux, denseAux, 1203)

	// Degenerate-knob bit-identity, off the timer, on both worlds: the
	// conservative tier must be indistinguishable from the exact engine.
	for _, w := range []struct {
		name string
		world
	}{{"sparse", sparse}, {"dense", dense}} {
		for u := 0; u < anonUsers; u += 17 {
			got := w.approx.QueryUserApprox(u, k, index.ApproxParams{})
			want := w.full.QueryUser(u, k)
			if len(got) != len(want) {
				b.Fatalf("%s user %d: approx %d candidates, full %d", w.name, u, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					b.Fatalf("%s user %d candidate %d: approx %+v, full %+v — degenerate exactness broken",
						w.name, u, i, got[i], want[i])
				}
			}
		}
	}

	// recallAt10 computes mean recall@10 against the exact top-10 over
	// every anonymized user, off the timer.
	recallAt10 := func(w world, ap index.ApproxParams) float64 {
		hits, want := 0, 0
		for u := 0; u < anonUsers; u++ {
			exact := w.full.QueryUser(u, k)
			got := w.approx.QueryUserApprox(u, k, ap)
			in := map[int]bool{}
			for _, c := range got {
				in[c.User] = true
			}
			for _, c := range exact {
				want++
				if in[c.User] {
					hits++
				}
			}
		}
		return float64(hits) / float64(want)
	}

	qps := map[string]float64{}
	recalls := map[string]float64{}
	runMode := func(name string, fn func(i int)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				fn(i)
			}
			rate := float64(b.N) / time.Since(start).Seconds()
			b.ReportMetric(rate, "qps")
			if prev, ok := qps[name]; !ok || rate > prev {
				qps[name] = rate
			}
		})
	}

	recalls["sparse-approx-exact"] = recallAt10(sparse, index.ApproxParams{})
	runMode("sparse-full-scan", func(i int) { sparse.full.QueryUser(i%anonUsers, k) })
	runMode("sparse-approx-exact", func(i int) { sparse.approx.QueryUserApprox(i%anonUsers, k, index.ApproxParams{}) })

	// The dense sweep covers both knobs: theta alone (skip mass below the
	// bar) and theta x budget (bound-ordered rescore pool) — the budget
	// modes are where the block-max machinery pays, because the pool bar
	// rises with the best bounds seen instead of waiting for theta.
	type denseMode struct {
		theta  float64
		budget int
	}
	denseModes := []denseMode{
		{1.0, 0}, {1.2, 0}, {1.3, 0}, {1.4, 0}, {1.5, 0}, {2.0, 0},
		{1.0, 100}, {1.0, 200}, {1.2, 100}, {1.3, 100},
		{1.4, 100}, {1.5, 100}, {2.0, 100}, {1.5, 200}, {2.0, 200},
	}
	modeName := func(m denseMode) string {
		if m.budget > 0 {
			return fmt.Sprintf("dense-approx-theta-%.1f-budget-%d", m.theta, m.budget)
		}
		return fmt.Sprintf("dense-approx-theta-%.1f", m.theta)
	}
	runMode("dense-full-scan", func(i int) { dense.full.QueryUser(i%anonUsers, k) })
	for _, m := range denseModes {
		ap := index.ApproxParams{Theta: m.theta, Budget: m.budget}
		name := modeName(m)
		recalls[name] = recallAt10(dense, ap)
		runMode(name, func(i int) { dense.approx.QueryUserApprox(i%anonUsers, k, ap) })
	}

	speedup := func(num, den string) float64 {
		if qps[den] > 0 {
			return qps[num] / qps[den]
		}
		return 0
	}
	// The headline number: the fastest dense mode that still clears
	// recall@10 >= 0.95, against the exact dense full scan.
	bestDense := ""
	for _, m := range denseModes {
		name := modeName(m)
		if recalls[name] >= 0.95 && (bestDense == "" || qps[name] > qps[bestDense]) {
			bestDense = name
		}
	}
	denseSpeedup := 0.0
	if bestDense != "" {
		denseSpeedup = speedup(bestDense, "dense-full-scan")
	}

	thetaRows := make([]map[string]any, 0, len(denseModes))
	for _, m := range denseModes {
		name := modeName(m)
		thetaRows = append(thetaRows, map[string]any{
			"theta":     m.theta,
			"budget":    m.budget,
			"qps":       qps[name],
			"recall_10": recalls[name],
			"speedup":   speedup(name, "dense-full-scan"),
		})
	}
	summary := map[string]any{
		"benchmark":      "approx-recall",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    runtime.GOMAXPROCS(0) == 1,
		"interpretation": "the WAND walk is a work-reduction win (threshold-certified posting skipping + bounded rescore), not parallelism, so speedups hold on single-core runners; theta 1.0 is provably exact (asserted bit-identical inline), theta > 1 trades recall for skipped postings — the dense sweep shows the trade explicitly",
		"sparse": map[string]any{
			"world":     map[string]int{"anon_users": anonUsers, "aux_users": sparseAux, "attr_dim": attrDim, "community": community},
			"qps":       map[string]float64{"full-scan": qps["sparse-full-scan"], "approx-exact": qps["sparse-approx-exact"]},
			"recall_10": recalls["sparse-approx-exact"],
			"speedup":   speedup("sparse-approx-exact", "sparse-full-scan"),
		},
		"dense": map[string]any{
			"world":       map[string]int{"anon_users": anonUsers, "aux_users": denseAux, "attr_dim": attrDim, "community": denseAux},
			"full_qps":    qps["dense-full-scan"],
			"theta_sweep": thetaRows,
			"best_at_recall_0.95": map[string]any{
				"mode": bestDense, "speedup": denseSpeedup,
			},
		},
		"approx_counters": map[string]int64{
			"sparse_postings_skipped": sparse.stats.Snapshot().PostingsSkipped,
			"dense_postings_skipped":  dense.stats.Snapshot().PostingsSkipped,
			"sparse_rescored":         sparse.stats.Snapshot().Rescored,
			"dense_rescored":          dense.stats.Snapshot().Rescored,
			"sparse_blocks_checked":   sparse.stats.Snapshot().BlocksChecked,
			"sparse_blocks_skipped":   sparse.stats.Snapshot().BlocksSkipped,
			"dense_blocks_checked":    dense.stats.Snapshot().BlocksChecked,
			"dense_blocks_skipped":    dense.stats.Snapshot().BlocksSkipped,
			"sparse_cursors_demoted":  sparse.stats.Snapshot().CursorsDemoted,
			"dense_cursors_demoted":   dense.stats.Snapshot().CursorsDemoted,
		},
		"baseline": "full-scan is the per-shard bounded-heap scan over every aux user; approx generates candidates with max-score/WAND posting cursors and exact-rescores survivors — degenerate knobs asserted bit-identical inline, aggressive knobs measured against exact recall@10",
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_recall.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_recall.json: %v", err)
		}
	}
	if bestDense == "" {
		b.Log("warning: no dense theta cleared recall@10 >= 0.95")
	} else if denseSpeedup < 2 {
		b.Logf("warning: dense approx speedup %.2fx at recall >= 0.95 below the 2x target (noise or regression)", denseSpeedup)
	}
}

// benchSink keeps benchmark loops from being dead-code eliminated.
var benchSink float64

// BenchmarkScoreKernel measures the flat scoring kernel against the
// retained naive reference (similarity.ScoreSlow — the pre-flat-layout
// per-pair implementation) on a dense-attribute real-text world, at two
// granularities: raw ns/pair over full row sweeps, and the end-to-end
// single-thread full-scan QueryUser path (bounded top-K selection over
// every auxiliary user). Parity is asserted inline before any timing —
// the flat kernel must be bit-identical to the naive reference pair by
// pair and query by query — so BENCH_score.json can never report a
// speedup obtained by changing results.
func BenchmarkScoreKernel(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 500, HBUsers: 500, Seed: 101})
	split := SplitClosedWorld(w.WebMD, 0.5, 102)
	// MaxBigrams 300 keeps the stylometric attribute sets dense — the
	// regime where the fused attribute merge carries the kernel win.
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 300, features.Options{})
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 10}
	p := core.NewPipelineFromStore(anonS, auxS, cfg)
	sc := p.Scorer
	anonN, auxN := p.G1.NumNodes(), p.G2.NumNodes()
	const k = 10

	// naiveTopK is the pre-PR full-scan QueryUser: a bounded selection
	// over ScoreSlow, under the same (score desc, id asc) order.
	naiveTopK := func(u int) []core.Candidate {
		best := make([]core.Candidate, 0, k)
		for v := 0; v < auxN; v++ {
			c := core.Candidate{User: v, Score: sc.ScoreSlow(u, v)}
			if len(best) == k {
				worst := best[len(best)-1]
				if c.Score < worst.Score || (c.Score == worst.Score && c.User > worst.User) {
					continue
				}
				best = best[:len(best)-1]
			}
			i := len(best)
			for i > 0 && (best[i-1].Score < c.Score || (best[i-1].Score == c.Score && best[i-1].User > c.User)) {
				i--
			}
			best = append(best, core.Candidate{})
			copy(best[i+1:], best[i:])
			best[i] = c
		}
		return best
	}

	// Inline parity assertion: flat ≡ naive, bit for bit, off the timer.
	for u := 0; u < anonN; u += 13 {
		got, want := p.QueryUser(u, k), naiveTopK(u)
		if len(got) != len(want) {
			b.Fatalf("user %d: flat returned %d candidates, naive %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				b.Fatalf("user %d candidate %d: flat %+v, naive %+v — kernel parity broken", u, i, got[i], want[i])
			}
		}
		for v := 0; v < auxN; v += 7 {
			if sc.Score(u, v) != sc.ScoreSlow(u, v) {
				b.Fatalf("Score(%d,%d) = %v, ScoreSlow = %v — kernel parity broken", u, v, sc.Score(u, v), sc.ScoreSlow(u, v))
			}
		}
	}

	nsPerPair := map[string]float64{}
	qps := map[string]float64{}
	b.Run("naive-pair", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			u := i % anonN
			for v := 0; v < auxN; v++ {
				benchSink += sc.ScoreSlow(u, v)
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(b.N*auxN)
		b.ReportMetric(ns, "ns/pair")
		if prev, ok := nsPerPair["naive"]; !ok || ns < prev {
			nsPerPair["naive"] = ns
		}
	})
	b.Run("flat-pair", func(b *testing.B) {
		row := make([]float64, auxN)
		var prof similarity.QueryProfile
		start := time.Now()
		for i := 0; i < b.N; i++ {
			sc.PrepareQuery(i%anonN, &prof)
			sc.ScoreRange(&prof, 0, auxN, row)
			benchSink += row[0]
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(b.N*auxN)
		b.ReportMetric(ns, "ns/pair")
		if prev, ok := nsPerPair["flat"]; !ok || ns < prev {
			nsPerPair["flat"] = ns
		}
	})
	b.Run("queryuser-naive", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			naiveTopK(i % anonN)
		}
		rate := float64(b.N) / time.Since(start).Seconds()
		b.ReportMetric(rate, "qps")
		if prev, ok := qps["naive-full-scan"]; !ok || rate > prev {
			qps["naive-full-scan"] = rate
		}
	})
	b.Run("queryuser-flat", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			p.QueryUser(i%anonN, k)
		}
		rate := float64(b.N) / time.Since(start).Seconds()
		b.ReportMetric(rate, "qps")
		if prev, ok := qps["flat-full-scan"]; !ok || rate > prev {
			qps["flat-full-scan"] = rate
		}
	})

	kernelSpeedup := 0.0
	if nsPerPair["flat"] > 0 {
		kernelSpeedup = nsPerPair["naive"] / nsPerPair["flat"]
	}
	querySpeedup := 0.0
	if qps["naive-full-scan"] > 0 {
		querySpeedup = qps["flat-full-scan"] / qps["naive-full-scan"]
	}
	summary := map[string]any{
		"benchmark":      "score-kernel",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    runtime.GOMAXPROCS(0) == 1,
		"interpretation": "both contrasts are single-threaded: the kernel speedup is SoA layout + precomputed norms over the naive per-pair reference, and the queryuser speedup is the same kernel under the bounded top-K scan — memory-layout wins, not parallelism, so they hold on single-core runners",
		"world": map[string]int{
			"anon_users": anonN, "aux_users": auxN,
			"landmarks": cfg.Landmarks, "max_bigrams": 300,
		},
		"ns_per_pair":       nsPerPair,
		"kernel_speedup":    kernelSpeedup,
		"qps":               qps,
		"queryuser_speedup": querySpeedup,
		"baseline":          "naive is the retained pre-flat-kernel ScoreSlow (per-pair norm re-summation, live degree walks, two-pass attribute merge); flat is PrepareQuery+ScoreRange over SoA caches with precomputed norms — parity asserted inline, bit-identical",
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_score.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_score.json: %v", err)
		}
	}
}

// BenchmarkServeThroughput measures end-to-end HTTP query throughput of
// the dehealthd service, micro-batched versus unbatched, with concurrent
// clients. It writes a BENCH_serving.json summary next to the package so
// the serving-path perf trajectory is tracked across PRs.
func BenchmarkServeThroughput(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 250, HBUsers: 250, Seed: 93})
	split := SplitClosedWorld(w.WebMD, 0.5, 94)
	opt := DefaultOptions()
	opt.MaxBigrams = 100
	opt.Landmarks = 10
	pw := PrepareWorld(split.Anon, split.Aux, opt)
	anonN, auxN := pw.Sizes()
	if _, err := pw.QueryUser(0, 10, opt); err != nil {
		b.Fatal(err)
	}

	const clients = 16
	qps := map[string]float64{}
	modes := map[string]map[string]any{}
	// The batched micro-batch size is kept at half the client concurrency
	// so the size trigger (not the deadline) does the flushing under load;
	// the deadline only bounds tail latency when traffic thins out.
	for _, bc := range []struct {
		name  string
		batch int
		flush time.Duration
	}{
		{"unbatched", 1, time.Millisecond},
		{"batched", 8, 250 * time.Microsecond},
	} {
		modes[bc.name] = map[string]any{"max_batch": bc.batch, "flush_us": bc.flush.Microseconds()}
		b.Run(bc.name, func(b *testing.B) {
			srv := NewServer(pw, ServeOptions{Batch: bc.batch, FlushInterval: bc.flush, K: 10, Attack: opt})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()

			var next int64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := atomic.AddInt64(&next, 1)
						if i > int64(b.N) {
							return
						}
						body := fmt.Sprintf(`{"user": %d, "k": 10}`, int(i)%anonN)
						resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != 200 {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			rate := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(rate, "qps")
			if prev, ok := qps[bc.name]; !ok || rate > prev {
				qps[bc.name] = rate
			}
		})
	}

	// Micro-batching trades per-request dispatch overhead for worker-pool
	// parallelism within a flush; on a single-core runner there is no
	// parallelism to buy, so batched ~<= unbatched is the expected reading
	// (queueing delay with nothing in return), not a regression — label
	// the artifact the same way BENCH_sharding.json is labeled.
	singleCore := runtime.GOMAXPROCS(0) == 1
	interpretation := "multi-core: batched vs unbatched qps measures the micro-batching win under concurrent clients"
	if singleCore {
		interpretation = "single-core environment: batching buys no parallelism and only adds flush queueing, so batched ~<= unbatched is expected; run on a multi-core machine to measure the batching win"
	}
	summary := map[string]any{
		"benchmark":      "serving",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    singleCore,
		"interpretation": interpretation,
		"world":          map[string]int{"anon_users": anonN, "aux_users": auxN},
		"qps":            qps,
		"config":         map[string]any{"clients": clients, "k": 10, "modes": modes},
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_serving.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_serving.json: %v", err)
		}
	}
}

// BenchmarkIngest measures incremental single-user ingestion into a live
// prepared world — extraction, graph extension and similarity-cache sync.
func BenchmarkIngest(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 250, HBUsers: 250, Seed: 95})
	split := SplitClosedWorld(w.WebMD, 0.5, 96)
	opt := DefaultOptions()
	opt.MaxBigrams = 100
	opt.Landmarks = 10
	pw := PrepareWorld(split.Anon, split.Aux, opt)
	if _, err := pw.QueryUser(0, 10, opt); err != nil {
		b.Fatal(err)
	}
	text := split.Anon.Posts[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pw.IngestUser(fmt.Sprintf("bench-%d", i), []IngestPost{
			{Thread: i % 3, Text: text},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStylometryExtract measures single-post feature extraction, the
// pipeline's hot path.
func BenchmarkStylometryExtract(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 30, HBUsers: 30, Seed: 5})
	ex := stylometry.New()
	ex.FitBigrams(w.WebMD.Texts()[:20], 100)
	text := w.WebMD.Posts[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Extract(text)
	}
}

// BenchmarkDefenseScrubbing evaluates the style-scrubbing defense (the
// §VII open problem) against the attack at increasing scrub levels.
func BenchmarkDefenseScrubbing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.DefenseExperiment(50, 20, 1902)
		if i == 0 {
			printOnce("defense", t.String())
		}
	}
}

// BenchmarkScoreKernelBatch measures the multi-query blocked kernel
// against the Q=1 flat kernel it batches, on the same dense-attribute
// world as BenchmarkScoreKernel: ns/pair at batch widths Q ∈ {1, 4, 8,
// 16} (PrepareBatch + one ScoreRangeBatch sweep over the full auxiliary
// range) versus the per-query PrepareQuery + ScoreRange baseline, plus
// the end-to-end single-worker query path — one TopKBatch blocked scan
// answering eight queries versus eight independent QueryUser scans.
// Parity is asserted inline before any timing — every batched score must
// be bit-identical to the naive reference ScoreSlow — so
// BENCH_batch.json can never report a speedup obtained by changing
// results.
func BenchmarkScoreKernelBatch(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 500, HBUsers: 500, Seed: 101})
	split := SplitClosedWorld(w.WebMD, 0.5, 102)
	// MaxBigrams 300 keeps the stylometric attribute sets dense — the
	// regime where the per-query weight tables carry the batched win.
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 300, features.Options{})
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 10}
	p := core.NewPipelineFromStore(anonS, auxS, cfg)
	sc := p.Scorer
	anonN, auxN := p.G1.NumNodes(), p.G2.NumNodes()
	const k = 10

	// Inline parity assertion: batched ≡ ScoreSlow, bit for bit, off the
	// timer, on a batch mixing spread-out query users.
	{
		const q = 8
		users := make([]int, q)
		out := make([][]float64, q)
		for i := range users {
			users[i] = (i * 31) % anonN
			out[i] = make([]float64, auxN)
		}
		var bp similarity.BatchProfile
		sc.PrepareBatch(users, &bp)
		sc.ScoreRangeBatch(&bp, 0, auxN, out)
		for i, u := range users {
			for v := 0; v < auxN; v++ {
				if want := sc.ScoreSlow(u, v); out[i][v] != want {
					b.Fatalf("batch[%d][%d] = %v, ScoreSlow(%d,%d) = %v — batched kernel parity broken",
						i, v, out[i][v], u, v, want)
				}
			}
		}
	}

	nsPerPair := map[string]float64{}
	b.Run("flat-q1", func(b *testing.B) {
		row := make([]float64, auxN)
		var prof similarity.QueryProfile
		start := time.Now()
		for i := 0; i < b.N; i++ {
			sc.PrepareQuery(i%anonN, &prof)
			sc.ScoreRange(&prof, 0, auxN, row)
			benchSink += row[0]
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(b.N*auxN)
		b.ReportMetric(ns, "ns/pair")
		if prev, ok := nsPerPair["flat-q1"]; !ok || ns < prev {
			nsPerPair["flat-q1"] = ns
		}
	})
	for _, q := range []int{1, 4, 8, 16} {
		name := fmt.Sprintf("batch-q%d", q)
		b.Run(name, func(b *testing.B) {
			users := make([]int, q)
			out := make([][]float64, q)
			for i := range out {
				out[i] = make([]float64, auxN)
			}
			var bp similarity.BatchProfile
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for j := range users {
					users[j] = (i*q + j) % anonN
				}
				sc.PrepareBatch(users, &bp)
				sc.ScoreRangeBatch(&bp, 0, auxN, out)
				benchSink += out[0][0]
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(b.N*q*auxN)
			b.ReportMetric(ns, "ns/pair")
			if prev, ok := nsPerPair[name]; !ok || ns < prev {
				nsPerPair[name] = ns
			}
		})
	}

	// End-to-end query path, one worker on purpose: the contrast is one
	// blocked TopKBatch scan answering 8 queries versus 8 independent
	// bounded-heap scans — same thread, same world, so the difference is
	// purely the kernel's cache and table-amortization win.
	qps := map[string]float64{}
	const batchQ = 8
	busers := make([]int, batchQ)
	b.Run("queryuser-seq", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for j := range busers {
				p.QueryUser((i*batchQ+j)%anonN, k)
			}
		}
		rate := float64(b.N*batchQ) / time.Since(start).Seconds()
		b.ReportMetric(rate, "qps")
		if prev, ok := qps["queryuser-sequential"]; !ok || rate > prev {
			qps["queryuser-sequential"] = rate
		}
	})
	b.Run("querybatch-q8", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for j := range busers {
				busers[j] = (i*batchQ + j) % anonN
			}
			p.QueryBatch(busers, k, 1)
		}
		rate := float64(b.N*batchQ) / time.Since(start).Seconds()
		b.ReportMetric(rate, "qps")
		if prev, ok := qps["querybatch-q8"]; !ok || rate > prev {
			qps["querybatch-q8"] = rate
		}
	})

	speedup := func(name string) float64 {
		if nsPerPair[name] > 0 {
			return nsPerPair["flat-q1"] / nsPerPair[name]
		}
		return 0
	}
	querySpeedup := 0.0
	if qps["queryuser-sequential"] > 0 {
		querySpeedup = qps["querybatch-q8"] / qps["queryuser-sequential"]
	}
	// The batched win is arithmetic-intensity and cache reuse — the dense
	// weight tables amortize over every auxiliary row and each hot block
	// feeds Q queries — not parallelism: everything here runs one worker
	// on one goroutine, so the artifact reads the same on any core count.
	summary := map[string]any{
		"benchmark":      "score-kernel-batch",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    runtime.GOMAXPROCS(0) == 1,
		"interpretation": "batched vs flat-q1 ns/pair is a single-threaded contrast: the win is per-query weight-table amortization and per-block cache reuse in the multi-query kernel, not parallelism, so it holds on single-core runners; querybatch-q8 vs queryuser-sequential shows the same win through the end-to-end blocked top-K scan (one worker)",
		"world": map[string]int{
			"anon_users": anonN, "aux_users": auxN,
			"landmarks": cfg.Landmarks, "max_bigrams": 300,
		},
		"ns_per_pair": nsPerPair,
		"kernel_speedup": map[string]float64{
			"batch-q1":  speedup("batch-q1"),
			"batch-q4":  speedup("batch-q4"),
			"batch-q8":  speedup("batch-q8"),
			"batch-q16": speedup("batch-q16"),
		},
		"qps":                qps,
		"querybatch_speedup": querySpeedup,
		"baseline":           "flat-q1 is the per-query flat kernel (PrepareQuery + ScoreRange); batch-qN is PrepareBatch + ScoreRangeBatch at width N — parity with ScoreSlow asserted inline, bit-identical. BENCH_serving.json tracks the HTTP dispatch the batched flush rides; this artifact tracks the kernel-level win under it",
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_batch.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_batch.json: %v", err)
		}
	}
	if s := speedup("batch-q8"); s > 0 && s < 1.5 {
		b.Logf("warning: batch-q8 kernel speedup %.2fx below the 1.5x target (noise or regression)", s)
	}
}

// BenchmarkWarmRestart measures the warm-restart subsystem: booting a
// query-ready world cold (PrepareWorld: extraction, attribute sets, UDA
// build, scorer precomputation, index build) versus warm (LoadWorld over a
// snapshot file, mmap and copying paths), each timed through its first
// answered query so both sides pay full pipeline materialization. Parity
// is asserted inline before any timing — the loaded world must answer a
// sample of queries bit-identically to the world that saved it — so
// BENCH_snapshot.json can never report a speedup obtained by changing
// results. The summary lands in BENCH_snapshot.json.
func BenchmarkWarmRestart(b *testing.B) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 400, HBUsers: 400, Seed: 111})
	split := SplitClosedWorld(w.WebMD, 0.5, 112)
	opt := DefaultOptions()
	opt.MaxBigrams = 300
	opt.Landmarks = 10
	opt.Shards = 2
	opt.Prune = true

	path := filepath.Join(b.TempDir(), "bench.snap")

	// Reference world, snapshot, and the inline parity gate.
	ref := PrepareWorld(split.Anon, split.Aux, opt)
	if err := ref.Snapshot(path); err != nil {
		b.Fatalf("Snapshot: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	anonN, auxN := ref.Sizes()
	const k = 10
	for _, noMmap := range []bool{false, true} {
		lw, err := LoadWorld(path, LoadOptions{NoMmap: noMmap})
		if err != nil {
			b.Fatalf("LoadWorld(noMmap=%v): %v", noMmap, err)
		}
		for u := 0; u < anonN; u += 7 {
			want, err := ref.QueryUser(u, k, opt)
			if err != nil {
				b.Fatal(err)
			}
			got, err := lw.QueryUser(u, k, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != len(want) {
				b.Fatalf("user %d: restored returned %d candidates, original %d", u, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					b.Fatalf("user %d candidate %d: restored %+v, original %+v — snapshot parity broken", u, i, got[i], want[i])
				}
			}
		}
	}

	// Each timed iteration boots a world from scratch and answers one
	// query, so the contrast is time-to-first-answer.
	ms := map[string]float64{}
	firstQuery := func(b *testing.B, pw *PreparedWorld) {
		cands, err := pw.QueryUser(0, k, opt)
		if err != nil || len(cands) == 0 {
			b.Fatalf("first query: %d candidates, err %v", len(cands), err)
		}
	}
	b.Run("cold-prepare", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			firstQuery(b, PrepareWorld(split.Anon, split.Aux, opt))
		}
		v := float64(time.Since(start).Milliseconds()) / float64(b.N)
		b.ReportMetric(v, "ms/boot")
		if prev, ok := ms["cold_prepare"]; !ok || v < prev {
			ms["cold_prepare"] = v
		}
	})
	for _, mode := range []struct {
		name   string
		noMmap bool
	}{{"warm-load-mmap", false}, {"warm-load-copy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				lw, err := LoadWorld(path, LoadOptions{NoMmap: mode.noMmap})
				if err != nil {
					b.Fatal(err)
				}
				firstQuery(b, lw)
			}
			v := float64(time.Since(start).Microseconds()) / 1000 / float64(b.N)
			b.ReportMetric(v, "ms/boot")
			key := strings.ReplaceAll(mode.name, "-", "_")
			if prev, ok := ms[key]; !ok || v < prev {
				ms[key] = v
			}
		})
	}

	speedup := 0.0
	if ms["warm_load_mmap"] > 0 {
		speedup = ms["cold_prepare"] / ms["warm_load_mmap"]
	}
	summary := map[string]any{
		"benchmark":      "warm-restart",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    runtime.GOMAXPROCS(0) == 1,
		"interpretation": "cold boot replays extraction + UDA build + scorer precomputation + index build; warm boot mmaps the snapshot and adopts the saved arrays, so the speedup is work elided, not parallelism — it holds on single-core runners and grows with corpus size",
		"world": map[string]int{
			"anon_users": anonN, "aux_users": auxN,
			"landmarks": opt.Landmarks, "max_bigrams": opt.MaxBigrams,
			"shards": opt.Shards,
		},
		"prune":          true,
		"snapshot_bytes": fi.Size(),
		"ms_per_boot":    ms,
		"speedup":        speedup,
		"baseline":       "cold-prepare is PrepareWorld + first QueryUser (full pipeline materialization); warm-load is LoadWorld + first QueryUser over the same snapshot — parity asserted inline, bit-identical",
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_snapshot.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_snapshot.json: %v", err)
		}
	}
	if speedup > 0 && speedup < 10 {
		b.Logf("warning: warm restart speedup %.1fx below the 10x target (noise or regression)", speedup)
	}
}
