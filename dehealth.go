// Package dehealth is the public API of the De-Health reproduction — the
// online-health-data de-anonymization framework of Ji et al., "De-Health:
// All Your Online Health Information Are Belong to Us" (ICDE 2020).
//
// The package exposes the full pipeline:
//
//   - dataset handling (the corpus model, JSON I/O, closed/open-world
//     splits) and a calibrated synthetic health-forum generator standing in
//     for the paper's WebMD/HealthBoards crawls;
//   - the two-phase De-Health attack: structural Top-K candidate selection
//     over User-Data-Attribute graphs, then classifier-based refined DA with
//     open-world handling (false addition, mean verification);
//   - the §VI linkage attack (NameLink and AvatarLink) connecting forum
//     accounts to external-service profiles;
//   - the §IV theoretical bounds on re-identifiability.
//
// Quick start:
//
//	world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: 500, HBUsers: 800, Seed: 1})
//	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 7)
//	res, err := dehealth.Attack(split.Anon, split.Aux, dehealth.DefaultOptions())
//	// res.Mapping[u] is the de-anonymized auxiliary user of anonymized user u (or -1).
//
// # Extract once, attack many
//
// Almost all of an attack's cost is stylometric feature extraction — every
// post of both datasets maps to a 400+-dimensional Table I vector — and
// that work depends only on the (anonymized, auxiliary) dataset pair, not
// on the attack configuration. PrepareWorld materializes those features
// once, in parallel (see Options.Workers), into a shared feature store and
// returns a PreparedWorld whose Attack method runs any number of
// configurations (candidate-set sizes, classifiers, open-world schemes,
// similarity weights) against the cached artifacts:
//
//	pw := dehealth.PrepareWorld(split.Anon, split.Aux, dehealth.DefaultOptions())
//	for _, k := range []int{5, 10, 20} {
//		opt := dehealth.DefaultOptions()
//		opt.K = k
//		res, err := pw.Attack(opt)
//		// ...
//	}
//
// Attack(anon, aux, opt) is equivalent to PrepareWorld(anon, aux,
// opt).Attack(opt) and produces identical results; the one-shot form simply
// discards the store afterwards.
package dehealth

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"dehealth/internal/anonymize"
	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/index"
	"dehealth/internal/linkage"
	"dehealth/internal/ml"
	"dehealth/internal/serve"
	"dehealth/internal/shard"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// Dataset is a health forum's data: users, threads and posts.
type Dataset = corpus.Dataset

// Split is an anonymized/auxiliary partition with evaluation ground truth.
type Split = corpus.Split

// LoadDataset reads a JSON dataset written by (*Dataset).Save.
func LoadDataset(path string) (*Dataset, error) { return corpus.Load(path) }

// SplitClosedWorld partitions each user's posts, sending auxFrac of them to
// the auxiliary side (§V-A methodology).
func SplitClosedWorld(d *Dataset, auxFrac float64, seed int64) *Split {
	return corpus.SplitClosedWorld(d, auxFrac, rand.New(rand.NewSource(seed)))
}

// SplitOpenWorld builds an open-world partition with the given overlapping
// user ratio (§V-B methodology, footnote 10).
func SplitOpenWorld(d *Dataset, overlapRatio float64, seed int64) *Split {
	return corpus.OpenWorldOverlap(d, overlapRatio, rand.New(rand.NewSource(seed)))
}

// WorldConfig sizes a synthetic evaluation world.
type WorldConfig struct {
	// WebMDUsers and HBUsers are account counts for the two forums.
	WebMDUsers, HBUsers int
	// OverlapFrac is the fraction of WebMD users who also hold an HB
	// account (default 0.2).
	OverlapFrac float64
	// Seed makes the world reproducible.
	Seed int64
}

// World is a generated evaluation world: two forums over a shared person
// universe plus the external-service directory for linkage attacks.
type World struct {
	WebMD, HB *Dataset
	Directory *linkage.Directory
	Universe  *synth.Universe
}

// GenerateWorld builds a synthetic world calibrated to the paper's corpus
// statistics (Fig.1, Fig.2, Fig.7).
func GenerateWorld(cfg WorldConfig) *World {
	if cfg.OverlapFrac == 0 {
		cfg.OverlapFrac = 0.2
	}
	overlap := int(cfg.OverlapFrac * float64(cfg.WebMDUsers))
	uSize := cfg.WebMDUsers + cfg.HBUsers - overlap + cfg.WebMDUsers/2
	u := synth.NewUniverse(uSize, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	wm, hm := synth.OverlappingMembers(u, cfg.WebMDUsers, cfg.HBUsers, overlap, rng)
	return &World{
		WebMD:     synth.Generate(synth.WebMDLike(cfg.WebMDUsers, cfg.Seed+2), u, wm),
		HB:        synth.Generate(synth.HBLike(cfg.HBUsers, cfg.Seed+3), u, hm),
		Directory: synth.SocialDirectory(u, synth.DefaultServices(), cfg.Seed+4),
		Universe:  u,
	}
}

// Classifier selects the refined-DA learning algorithm.
type Classifier string

// Supported classifiers.
const (
	KNN  Classifier = "knn"  // k-nearest neighbors (k = 3)
	NN   Classifier = "nn"   // nearest neighbor
	SMO  Classifier = "smo"  // SVM via sequential minimal optimization
	RLSC Classifier = "rlsc" // regularized least squares classification
	NB   Classifier = "nb"   // Gaussian naive Bayes
)

// Scheme selects the open-world handling of refined DA.
type Scheme string

// Supported open-world schemes.
const (
	Closed           Scheme = "closed"
	FalseAddition    Scheme = "false-addition"
	MeanVerification Scheme = "mean-verification"
	SigmaVerify      Scheme = "sigma-verification"
	Distractorless   Scheme = "distractorless"
)

// Options parametrizes an Attack run. Zero values take the paper defaults.
type Options struct {
	// C1, C2, C3 weight the degree, distance and attribute similarities
	// (paper default 0.05 / 0.05 / 0.9).
	C1, C2, C3 float64
	// Landmarks is ħ, the top-degree landmark count (default 50).
	Landmarks int
	// K is the Top-K candidate set size (default 10).
	K int
	// GraphMatching switches candidate selection from direct selection to
	// repeated maximum-weight bipartite matching.
	GraphMatching bool
	// Filter enables the Algorithm 2 threshold-vector filtering.
	Filter bool
	// Epsilon and L parametrize the filter (defaults 0.01, 10).
	Epsilon float64
	L       int
	// Classifier picks the refined-DA learner (default SMO).
	Classifier Classifier
	// Scheme picks the open-world handling (default Closed).
	Scheme Scheme
	// R is the mean-verification margin (default 0.25).
	R float64
	// Sigma is the sigma-verification threshold (default 1.0).
	Sigma float64
	// CosineThreshold is the distractorless acceptance level (default 0.98).
	CosineThreshold float64
	// MaxBigrams caps the POS-bigram feature block (default 300).
	MaxBigrams int
	// Workers bounds the worker pool used for feature extraction when
	// preparing the attack's feature store (<= 0 uses all CPUs).
	Workers int
	// Shards partitions the auxiliary side of a prepared world into this
	// many partition-parallel scoring shards: QueryUser/QueryBatch fan each
	// query's O(|aux|) row out across the shards and merge the per-shard
	// bounded heaps, with results bit-identical to the unsharded path.
	// Consulted by PrepareWorld (like MaxBigrams and Workers), not per
	// Attack/Query call. <= 1 disables sharding; counts beyond the
	// auxiliary population are clamped.
	Shards int
	// Prune enables candidate-pruned queries: each shard builds an
	// attribute inverted index (plus degree bands) over its auxiliary
	// window, QueryUser gathers only the query user's attribute-overlap
	// candidates and exact-rescores them, and zero-overlap users are
	// skipped whenever a structural score bound proves they cannot enter
	// the top-K — falling back to the full scan otherwise, so results are
	// always bit-identical to Prune=false. Consulted by PrepareWorld, not
	// per call; see PreparedWorld.PruneStats for the observed effect.
	Prune bool
	// Approx configures the approximate retrieval tier. Approx.Enabled is
	// consulted by PrepareWorld (the tier shares the pruning indexes, or
	// builds its own); the Theta/Budget knobs are per query call. See
	// ApproxConfig and PreparedWorld.ApproxStats.
	Approx ApproxConfig
	// Seed drives all randomized components.
	Seed int64
}

// ApproxConfig tunes the opt-in approximate retrieval tier: QueryUser and
// QueryBatch generate candidates with max-score/WAND posting cursors over
// the attribute inverted index — skipping whole posting ranges whose
// score upper bounds cannot beat the running K-th score — and
// exact-rescore every survivor with the unchanged scoring kernel, so
// scores are always exact and only candidate generation is approximate.
// The degenerate knobs (Theta <= 1, Budget <= 0) make every skip provably
// safe: results are then bit-identical to the exact path, just cheaper on
// dense-attribute worlds. This tier is explicitly outside the
// bit-identical parity contract (docs/ARCHITECTURE.md) once Theta > 1 or
// a budget binds; BENCH_recall.json tracks its measured recall@K.
type ApproxConfig struct {
	// Enabled turns the tier on for this world's queries. Consulted by
	// PrepareWorld like Prune; a world prepared without it answers
	// approximate requests through the exact path.
	Enabled bool
	// Budget caps how many candidates each shard query may exact-rescore;
	// <= 0 is unbounded. An exhausted budget returns the best candidates
	// found so far.
	Budget int
	// Theta scales the skip threshold: candidate ranges whose score upper
	// bound falls below Theta times the running K-th score are skipped.
	// <= 0 resolves to 1.0 (exact); values above 1 trade recall for speed.
	Theta float64
}

// DefaultOptions returns the paper's default attack configuration.
func DefaultOptions() Options {
	return Options{
		C1: 0.05, C2: 0.05, C3: 0.9,
		Landmarks:  50,
		K:          10,
		Classifier: SMO,
		Scheme:     Closed,
		R:          0.25,
		Epsilon:    0.01,
		L:          10,
	}
}

// normalized resolves zero-valued fields to the paper defaults.
func (o Options) normalized() Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.C1 == 0 && o.C2 == 0 && o.C3 == 0 {
		o.C1, o.C2, o.C3 = 0.05, 0.05, 0.9
	}
	if o.Landmarks <= 0 {
		o.Landmarks = 50
	}
	if o.Sigma == 0 {
		o.Sigma = 1.0
	}
	if o.CosineThreshold == 0 {
		o.CosineThreshold = 0.98
	}
	return o
}

// simConfig is the similarity configuration the options induce.
func (o Options) simConfig() similarity.Config {
	return similarity.Config{C1: o.C1, C2: o.C2, C3: o.C3, Landmarks: o.Landmarks}
}

// Result is the outcome of a full two-phase attack.
type Result struct {
	// Mapping[u] is the auxiliary user that anonymized user u was
	// de-anonymized to, or -1 for u -> ⊥.
	Mapping []int
	// TopK is the first-phase outcome (candidate sets and true-mapping
	// ranks when ground truth was supplied).
	TopK *core.TopKResult
	// Pipeline exposes the underlying artifacts (UDA graphs, scorer) for
	// inspection.
	Pipeline *core.Pipeline
}

func (o Options) classifierFactory() (func() ml.Classifier, error) {
	switch o.Classifier {
	case KNN, "":
		return func() ml.Classifier { return ml.NewKNN(3) }, nil
	case NN:
		return func() ml.Classifier { return ml.NN() }, nil
	case SMO:
		return func() ml.Classifier { return ml.NewSMO(ml.SMOConfig{C: 1, Seed: o.Seed}) }, nil
	case RLSC:
		return func() ml.Classifier { return ml.NewRLSC(1) }, nil
	case NB:
		return func() ml.Classifier { return ml.NewNaiveBayes() }, nil
	default:
		return nil, fmt.Errorf("dehealth: unknown classifier %q", o.Classifier)
	}
}

func (o Options) scheme() (core.OpenWorldScheme, error) {
	switch o.Scheme {
	case Closed, "":
		return core.ClosedWorld, nil
	case FalseAddition:
		return core.FalseAddition, nil
	case MeanVerification:
		return core.MeanVerification, nil
	case SigmaVerify:
		return core.SigmaVerification, nil
	case Distractorless:
		return core.DistractorlessVerification, nil
	default:
		return 0, fmt.Errorf("dehealth: unknown scheme %q", o.Scheme)
	}
}

// PreparedWorld is an (anonymized, auxiliary) dataset pair with its feature
// store already materialized: the fitted extractor, every post's stylometric
// vector, the per-user attribute sets and the UDA graphs. Build one with
// PrepareWorld, then run any number of attack configurations against it —
// only the phase that actually depends on the configuration (similarity
// weighting, Top-K selection, filtering, refined DA) is recomputed per
// Attack call. A PreparedWorld is safe for concurrent Attack calls.
type PreparedWorld struct {
	// Anon and Aux are the datasets the world was prepared from. Anon grows
	// as users are ingested.
	Anon, Aux *Dataset

	anonStore, auxStore *features.Store
	shards              int
	// prepOpt preserves the preparation-time options (MaxBigrams, Workers,
	// Shards, Prune plus the attack defaults in force), pinning the
	// configuration Snapshot captures and LoadWorld restores.
	prepOpt Options
	// pruneStats, when non-nil, enables candidate pruning on every derived
	// pipeline; all of them accumulate into this one shared counter block.
	pruneStats *index.Stats
	// approxStats, when non-nil, enables the approximate retrieval tier on
	// every derived pipeline, all sharing this one counter block.
	approxStats *index.ApproxStats
	// slice, when non-nil, marks a world loaded from a per-shard snapshot
	// slice (see SnapshotSlices): it serves the global auxiliary id window
	// [slice.Lo, slice.Hi) under local ids starting at 0.
	slice *SliceInfo

	// world serializes growth of the anonymized side (Ingest) against
	// everything that reads the stores (queries, attacks).
	world sync.RWMutex

	mu        sync.Mutex
	pipelines map[similarity.Config]*core.Pipeline
}

// PrepareWorld extracts the feature store of the dataset pair once, using
// opt.MaxBigrams for the POS-bigram block (fitted on aux, the adversary's
// data), opt.Workers extraction workers, opt.Shards auxiliary scoring
// shards and opt.Prune candidate pruning. The remaining Options fields are
// ignored here; pass them to (*PreparedWorld).Attack.
func PrepareWorld(anon, aux *Dataset, opt Options) *PreparedWorld {
	anonS, auxS := features.BuildPair(anon, aux, opt.MaxBigrams, features.Options{Workers: opt.Workers})
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	w := &PreparedWorld{
		Anon: anon, Aux: aux,
		anonStore: anonS, auxStore: auxS,
		shards:    shards,
		prepOpt:   opt,
		pipelines: map[similarity.Config]*core.Pipeline{},
	}
	if opt.Prune {
		w.pruneStats = &index.Stats{}
	}
	if opt.Approx.Enabled {
		w.approxStats = &index.ApproxStats{}
	}
	return w
}

// pipeline returns the cached pipeline for cfg, deriving it from an
// existing pipeline with the same landmark count when possible (sharing the
// landmark-distance caches) and building it from the stores otherwise.
func (w *PreparedWorld) pipeline(cfg similarity.Config) *core.Pipeline {
	w.mu.Lock()
	defer w.mu.Unlock()
	if p, ok := w.pipelines[cfg]; ok {
		return p
	}
	for c, p := range w.pipelines {
		if c.Landmarks == cfg.Landmarks {
			q := p.WithSimilarity(cfg)
			w.pipelines[cfg] = q
			return q
		}
	}
	p := core.NewShardedPipelineFromStore(w.anonStore, w.auxStore, cfg, w.shards)
	if w.pruneStats != nil {
		// Every pruned pipeline of this world shares one counter block;
		// WithSimilarity-derived pipelines inherit pruning (and the block)
		// from their parent above.
		p = p.Pruned(index.Config{}, w.pruneStats)
	}
	if w.approxStats != nil {
		// Same index configuration as pruning, so a world with both reuses
		// one set of shard indexes; derived pipelines inherit the tier.
		p = p.Approx(index.Config{}, w.approxStats)
	}
	w.pipelines[cfg] = p
	return p
}

// Attack runs one attack configuration against the prepared world. Only
// opt's attack parameters are consulted; the feature-store parameters
// (MaxBigrams, Workers) were fixed at PrepareWorld time.
func (w *PreparedWorld) Attack(opt Options) (*Result, error) {
	return w.AttackWithTruth(opt, nil)
}

// AttackWithTruth is Attack plus ground truth for rank bookkeeping; the
// truth never influences the attack itself.
func (w *PreparedWorld) AttackWithTruth(opt Options, trueMapping map[int]int) (*Result, error) {
	opt = opt.normalized()
	mkClf, err := opt.classifierFactory()
	if err != nil {
		return nil, err
	}
	scheme, err := opt.scheme()
	if err != nil {
		return nil, err
	}

	w.world.RLock()
	defer w.world.RUnlock()
	p := w.pipeline(opt.simConfig())

	sel := core.DirectSelection
	if opt.GraphMatching {
		sel = core.GraphMatchingSelection
	}
	tk := p.TopK(opt.K, sel, trueMapping)
	if opt.Filter {
		p.Filter(tk, core.FilterConfig{Epsilon: opt.Epsilon, L: opt.L})
	}
	res, err := p.RefinedDA(tk, core.RefineOptions{
		NewClassifier:   mkClf,
		Scheme:          scheme,
		R:               opt.R,
		Sigma:           opt.Sigma,
		CosineThreshold: opt.CosineThreshold,
		Seed:            opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Mapping: res.Mapping, TopK: tk, Pipeline: p}, nil
}

// Candidate pairs an auxiliary user with its structural similarity score.
type Candidate = core.Candidate

// IngestPost is one post of a newly observed anonymous user: an existing
// thread id (or NewThread) and the post text.
type IngestPost = features.IncomingPost

// NewThread marks an IngestPost as starting a fresh thread.
const NewThread = features.NewThread

// UserPosts is one newly observed user and their posts, the unit of
// ingestion.
type UserPosts = features.UserPosts

// Sizes reports the current aggregate world sizes: ingested-side
// (anonymized) and auxiliary user counts. ShardSizes breaks the same
// totals down per shard.
func (w *PreparedWorld) Sizes() (anonUsers, auxUsers int) {
	w.world.RLock()
	defer w.world.RUnlock()
	return w.anonStore.NumUsers(), w.auxStore.NumUsers()
}

// ShardSize is one shard's slice of a prepared world: the contiguous
// auxiliary partition it scores, and the anonymized accounts homed to it.
type ShardSize struct {
	// Shard is the shard index.
	Shard int
	// AuxUsers is the size of the shard's auxiliary partition.
	AuxUsers int
	// AnonUsers counts the anonymized accounts whose home shard this is.
	// Homes are assigned by a stable hash of the account name — identical
	// across restarts of the same prepared world — so ingest accounting is
	// deterministic; the data itself lives in the single anonymized store
	// regardless of home.
	AnonUsers int
}

// ShardSizes reports the per-shard breakdown of the world (a single entry
// when sharding is off). Summing the entries reproduces Sizes: auxiliary
// partitions tile [0, auxUsers) and every anonymized account has exactly
// one home shard.
func (w *PreparedWorld) ShardSizes() []ShardSize {
	w.world.RLock()
	defer w.world.RUnlock()
	bounds := shard.Bounds(w.auxStore.NumUsers(), w.shards)
	n := len(bounds) - 1
	out := make([]ShardSize, n)
	for i := 0; i < n; i++ {
		out[i] = ShardSize{Shard: i, AuxUsers: bounds[i+1] - bounds[i]}
	}
	for _, u := range w.Anon.Users {
		out[shard.RouteName(u.Name, n)].AnonUsers++
	}
	return out
}

// PruneStats reports the cumulative effect of candidate pruning
// (Options.Prune) across every query served by this world. Counters are
// per shard-query: a QueryUser over an N-shard world contributes N to
// Queries. Pruned results are always bit-identical to unpruned ones — the
// counters only describe how much scanning the index saved.
type PruneStats struct {
	// Enabled reports whether the world was prepared with Options.Prune.
	Enabled bool
	// Queries counts pruned-path shard queries.
	Queries int64
	// Fallbacks counts shard queries that fell back to the full window
	// scan (no index, or a similarity configuration with negative weights
	// that cannot certify bounds).
	Fallbacks int64
	// DenseQueries counts shard queries whose candidate set exceeded the
	// dense threshold; they still run the banded engine, but most of
	// their cost is the candidate rescore and only partial band skips
	// are available.
	DenseQueries int64
	// Candidates sums candidate-set sizes (attribute-overlap users that
	// were exact-rescored) over non-fallback queries.
	Candidates int64
	// Scanned sums zero-overlap users exact-scored anyway because their
	// degree band's structural bound could not certify skipping them.
	Scanned int64
	// Skipped sums users never scored: the structural bound proved they
	// cannot enter the top-K.
	Skipped int64
	// BandsChecked counts per-band bound evaluations; BandsSkipped counts
	// how many certified a skip — together they read out how tight the
	// per-band degree and norm ranges are on this world.
	BandsChecked int64
	// BandsSkipped counts band bound evaluations that certified skipping
	// every zero-overlap member of the band.
	BandsSkipped int64
}

// PruneStats snapshots the world's pruning counters; the zero value (with
// Enabled false) when the world was prepared without Options.Prune.
func (w *PreparedWorld) PruneStats() PruneStats {
	if w.pruneStats == nil {
		return PruneStats{}
	}
	s := w.pruneStats.Snapshot()
	return PruneStats{
		Enabled:      true,
		Queries:      s.Queries,
		Fallbacks:    s.Fallbacks,
		DenseQueries: s.DenseQueries,
		Candidates:   s.Candidates,
		Scanned:      s.Scanned,
		Skipped:      s.Skipped,
		BandsChecked: s.BandsChecked,
		BandsSkipped: s.BandsSkipped,
	}
}

// approxParams maps the options' per-call approximate knobs into the
// index layer's parameter struct.
func (o Options) approxParams() index.ApproxParams {
	return index.ApproxParams{Theta: o.Approx.Theta, Budget: o.Approx.Budget}
}

// ApproxStats reports the cumulative counters of the approximate
// retrieval tier (Options.Approx.Enabled) across every approximate query
// served by this world. Counters are per shard-query, like PruneStats.
// Scores returned by the tier are always exact; the counters describe how
// much candidate generation the posting cursors skipped.
type ApproxStats struct {
	// Enabled reports whether the world was prepared with the tier on.
	Enabled bool
	// Queries counts approximate-path shard queries.
	Queries int64
	// Fallbacks counts shard queries answered by the exact full scan (no
	// index, or a similarity configuration with negative weights).
	Fallbacks int64
	// CursorsOpened sums posting cursors opened (query attributes with
	// non-empty posting lists).
	CursorsOpened int64
	// PostingsSkipped sums posting entries the pivot walk passed over
	// without rescoring.
	PostingsSkipped int64
	// Rescored sums the surviving candidates exact-rescored by the flat
	// kernel.
	Rescored int64
	// BudgetExhausted counts shard queries whose finite ApproxConfig.Budget
	// dropped at least one surviving candidate from the bound-ordered
	// pending pool.
	BudgetExhausted int64
	// BlocksChecked counts block-max evaluations: pivot candidates
	// re-checked against their id-range block's structural bound.
	BlocksChecked int64
	// BlocksSkipped counts block-max evaluations that certified skipping
	// the pivot's whole id range.
	BlocksSkipped int64
	// CursorsDemoted counts posting cursors folded out of walks as
	// non-essential once the running threshold outgrew their bound mass.
	CursorsDemoted int64
}

// ApproxStats snapshots the world's approximate-tier counters; the zero
// value (with Enabled false) when the world was prepared without
// Options.Approx.Enabled.
func (w *PreparedWorld) ApproxStats() ApproxStats {
	if w.approxStats == nil {
		return ApproxStats{}
	}
	s := w.approxStats.Snapshot()
	return ApproxStats{
		Enabled:         true,
		Queries:         s.Queries,
		Fallbacks:       s.Fallbacks,
		CursorsOpened:   s.CursorsOpened,
		PostingsSkipped: s.PostingsSkipped,
		Rescored:        s.Rescored,
		BudgetExhausted: s.BudgetExhausted,
		BlocksChecked:   s.BlocksChecked,
		BlocksSkipped:   s.BlocksSkipped,
		CursorsDemoted:  s.CursorsDemoted,
	}
}

// QueryUser returns anonymized user u's top-k auxiliary candidates in
// decreasing similarity order under opt's similarity configuration —
// the single-row serving path: O(|aux|·dim) time, O(k) memory, no
// similarity-matrix allocation, and results identical to the Top-K phase of
// a full Attack. k <= 0 uses opt.K (default 10). With opt.Approx.Enabled
// the query runs through the approximate retrieval tier under the
// Theta/Budget knobs (exact at the conservative defaults; see
// ApproxConfig). Safe for concurrent use.
func (w *PreparedWorld) QueryUser(u, k int, opt Options) ([]Candidate, error) {
	opt = opt.normalized()
	if k <= 0 {
		k = opt.K
	}
	w.world.RLock()
	defer w.world.RUnlock()
	p := w.pipeline(opt.simConfig())
	if u < 0 || u >= p.G1.NumNodes() {
		return nil, fmt.Errorf("dehealth: user %d out of range [0, %d)", u, p.G1.NumNodes())
	}
	if opt.Approx.Enabled {
		return p.QueryUserApprox(u, k, opt.approxParams()), nil
	}
	return p.QueryUser(u, k), nil
}

// QueryBatch answers one QueryUser per entry of users, amortizing the
// batch over opt.Workers-bounded parallelism. Results align with users.
func (w *PreparedWorld) QueryBatch(users []int, k int, opt Options) ([][]Candidate, error) {
	opt = opt.normalized()
	if k <= 0 {
		k = opt.K
	}
	w.world.RLock()
	defer w.world.RUnlock()
	p := w.pipeline(opt.simConfig())
	for _, u := range users {
		if u < 0 || u >= p.G1.NumNodes() {
			return nil, fmt.Errorf("dehealth: user %d out of range [0, %d)", u, p.G1.NumNodes())
		}
	}
	if opt.Approx.Enabled {
		return p.QueryBatchApprox(users, k, opt.Workers, opt.approxParams()), nil
	}
	return p.QueryBatch(users, k, opt.Workers), nil
}

// Ingest appends newly observed anonymous users to the anonymized side of
// the world, incrementally: their posts are vectorized with the fitted
// extractor, the UDA graph gains one node per user plus the co-discussion
// edges their posts imply, and every cached pipeline's similarity caches
// are extended in place — nothing is re-extracted or rebuilt. Returns the
// new user indices, usable with QueryUser immediately. Safe for concurrent
// use with queries and attacks (ingestion takes the write lock).
func (w *PreparedWorld) Ingest(batch []UserPosts) ([]int, error) {
	w.world.Lock()
	defer w.world.Unlock()
	ids, err := w.anonStore.Append(batch)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	for _, p := range w.pipelines {
		p.SyncAppended()
	}
	w.mu.Unlock()
	return ids, nil
}

// IngestUser ingests a single anonymous account by display name; see
// Ingest.
func (w *PreparedWorld) IngestUser(name string, posts []IngestPost) (int, error) {
	ids, err := w.Ingest([]UserPosts{{User: corpus.User{Name: name, TrueIdentity: -1}, Posts: posts}})
	if err != nil {
		return -1, err
	}
	return ids[0], nil
}

// Attack runs the full two-phase De-Health attack: build UDA graphs, select
// Top-K candidate sets, optionally filter, and run refined DA. trueMapping
// (optional, evaluation only) can be supplied via AttackWithTruth. Callers
// running several configurations over the same dataset pair should use
// PrepareWorld to pay the feature-extraction cost once.
func Attack(anon, aux *Dataset, opt Options) (*Result, error) {
	return AttackWithTruth(anon, aux, opt, nil)
}

// AttackWithTruth is Attack plus ground truth for rank bookkeeping; the
// truth never influences the attack itself.
func AttackWithTruth(anon, aux *Dataset, opt Options, trueMapping map[int]int) (*Result, error) {
	// Reject invalid options before paying for feature extraction.
	if _, err := opt.classifierFactory(); err != nil {
		return nil, err
	}
	if _, err := opt.scheme(); err != nil {
		return nil, err
	}
	return PrepareWorld(anon, aux, opt).AttackWithTruth(opt, trueMapping)
}

// ScrubLevel selects how aggressively the style-scrubbing defense rewrites
// posts before release (see internal/anonymize).
type ScrubLevel = anonymize.Level

// Scrub levels, from no-op to aggressive character-class stripping.
const (
	ScrubOff        = anonymize.LevelOff
	ScrubLight      = anonymize.LevelLight
	ScrubStandard   = anonymize.LevelStandard
	ScrubAggressive = anonymize.LevelAggressive
)

// Defend applies the style-scrubbing anonymizer to a dataset before
// release — the defensive counterpart of the attack, addressing the open
// problem the paper's §VII describes.
func Defend(d *Dataset, level ScrubLevel) *Dataset {
	return anonymize.ScrubDataset(d, level)
}

// LinkageResult is the outcome of the §VI linkage attack.
type LinkageResult struct {
	// AvatarLinks and NameLinks are the raw per-technique links.
	AvatarLinks, NameLinks []linkage.Link
	// Dossiers are the aggregated, cross-validated per-victim profiles.
	Dossiers []linkage.Dossier
}

// ServeOptions configures the dehealthd online query service.
type ServeOptions struct {
	// Addr is the listen address (default ":8700"); used by Serve, ignored
	// by NewServer.
	Addr string
	// Workers bounds the per-flush query fan-out (<= 0 uses all CPUs).
	Workers int
	// Batch is the micro-batch size: pending requests flush at this count
	// (default 32). A flush's queries are answered through the multi-query
	// blocked scoring kernel, so Batch also bounds how many queries one
	// pass over the auxiliary data scores together.
	Batch int
	// FlushInterval flushes a non-empty micro-batch after this deadline
	// (default 2ms).
	FlushInterval time.Duration
	// DrainTimeout bounds how long Close waits for the pending micro-batch
	// to finish flushing before returning serve.ErrDrainTimeout (default
	// 5s); in-flight waiters are answered either way.
	DrainTimeout time.Duration
	// K is the candidate-set size of queries that omit k (default 10).
	K int
	// Attack supplies the similarity configuration queries score under;
	// zero values take the paper defaults.
	Attack Options
	// SnapshotPath, when non-empty, enables the POST /v1/snapshot admin
	// endpoint: each request writes the prepared world to this path
	// (atomically, via PreparedWorld.Snapshot) and reports the file size.
	// cmd/dehealthd additionally writes the same path on graceful shutdown.
	SnapshotPath string
}

// Server is the running dehealthd query service (see internal/serve): an
// HTTP API over a prepared world, admitting queries and ingests through a
// micro-batching channel that flushes on size or deadline. Within a flush,
// ingests apply before queries and queries are answered in same-k groups
// through the batched scoring kernel, so the service is race-free by
// construction and each auxiliary pass serves the whole group.
type Server = serve.Server

// serveBackend adapts a PreparedWorld to the serving layer.
type serveBackend struct {
	w       *PreparedWorld
	opt     Options
	workers int // ServeOptions.Workers: bounds the batched query fan-out
}

func (b serveBackend) Ingest(batch []UserPosts) ([]int, error) { return b.w.Ingest(batch) }
func (b serveBackend) QueryUser(u, k int) ([]Candidate, error) {
	return b.w.QueryUser(u, k, b.opt)
}

// QueryBatch routes a flush's same-k query group through the world's
// batched query path — the multi-query blocked scoring kernel — under the
// serve-level worker bound rather than the attack options' extraction
// worker count.
func (b serveBackend) QueryBatch(users []int, k int) ([][]Candidate, error) {
	opt := b.opt
	opt.Workers = b.workers
	return b.w.QueryBatch(users, k, opt)
}
func (b serveBackend) Sizes() (int, int) { return b.w.Sizes() }
func (b serveBackend) PruneCounters() (serve.PruneCounters, bool) {
	s := b.w.PruneStats()
	return serve.PruneCounters{
		Queries:      s.Queries,
		Fallbacks:    s.Fallbacks,
		DenseQueries: s.DenseQueries,
		Candidates:   s.Candidates,
		Scanned:      s.Scanned,
		Skipped:      s.Skipped,
		BandsChecked: s.BandsChecked,
		BandsSkipped: s.BandsSkipped,
	}, s.Enabled
}
func (b serveBackend) ApproxCounters() (serve.ApproxCounters, bool) {
	s := b.w.ApproxStats()
	return serve.ApproxCounters{
		Queries:         s.Queries,
		Fallbacks:       s.Fallbacks,
		CursorsOpened:   s.CursorsOpened,
		PostingsSkipped: s.PostingsSkipped,
		Rescored:        s.Rescored,
		BudgetExhausted: s.BudgetExhausted,
		BlocksChecked:   s.BlocksChecked,
		BlocksSkipped:   s.BlocksSkipped,
		CursorsDemoted:  s.CursorsDemoted,
	}, s.Enabled
}

// QueryUserApprox answers a per-request approximate query: the attack
// options run with the tier forced on (the prepared world must have it
// enabled; otherwise the query degrades to the exact path).
func (b serveBackend) QueryUserApprox(u, k int) ([]Candidate, error) {
	opt := b.opt
	opt.Approx.Enabled = true
	return b.w.QueryUser(u, k, opt)
}

// QueryBatchApprox is QueryUserApprox for a flush's same-k approximate
// group, under the serve-level worker bound.
func (b serveBackend) QueryBatchApprox(users []int, k int) ([][]Candidate, error) {
	opt := b.opt
	opt.Approx.Enabled = true
	opt.Workers = b.workers
	return b.w.QueryBatch(users, k, opt)
}

// ShardSlice reports the world's slice identity to the serving layer (see
// serve.SliceInfoer): a world loaded from a per-shard snapshot slice
// advertises its global auxiliary window so the /internal/query reply
// rebases local candidate ids to global ones.
func (b serveBackend) ShardSlice() (serve.ShardSlice, bool) {
	s, ok := b.w.SliceInfo()
	if !ok {
		return serve.ShardSlice{}, false
	}
	return serve.ShardSlice{Shard: s.Shard, Shards: s.Shards, Lo: s.Lo, Hi: s.Hi, AuxTotal: s.AuxTotal}, true
}

func (b serveBackend) ShardSizes() []serve.ShardCount {
	sizes := b.w.ShardSizes()
	out := make([]serve.ShardCount, len(sizes))
	for i, s := range sizes {
		out[i] = serve.ShardCount{Shard: s.Shard, AuxUsers: s.AuxUsers, AnonUsers: s.AnonUsers}
	}
	return out
}

// NewServer builds the query service over a prepared world without binding
// a listener — drive it with (*Server).Serve, ListenAndServe or Handler,
// and stop it with Close.
func NewServer(pw *PreparedWorld, opt ServeOptions) *Server {
	cfg := serve.Config{
		Workers:       opt.Workers,
		MaxBatch:      opt.Batch,
		FlushInterval: opt.FlushInterval,
		DrainTimeout:  opt.DrainTimeout,
		DefaultK:      opt.K,
	}
	if path := opt.SnapshotPath; path != "" {
		cfg.Snapshot = func() (serve.SnapshotInfo, error) {
			start := time.Now()
			if err := pw.Snapshot(path); err != nil {
				return serve.SnapshotInfo{}, err
			}
			info := serve.SnapshotInfo{Path: path, Millis: time.Since(start).Milliseconds()}
			if fi, err := os.Stat(path); err == nil {
				info.Bytes = fi.Size()
			}
			return info, nil
		}
	}
	// The plain wire endpoints are always exact: serving a world prepared
	// with Options.Approx only *builds* the tier, and the "approx" request
	// knob is the per-query opt-in (it routes to the *Approx backend
	// methods, which re-enable the flag). Without this reset a server
	// started with an aggressive Theta would silently answer plain queries
	// approximately.
	backendOpt := opt.Attack
	backendOpt.Approx.Enabled = false
	return serve.New(serveBackend{w: pw, opt: backendOpt, workers: opt.Workers}, cfg)
}

// Serve runs the dehealthd query service over a prepared world on
// opt.Addr, blocking until the server is closed:
//
//	POST /v1/query   {"user": 17, "k": 10}
//	POST /v1/ingest  {"name": "jdoe", "posts": [{"text": "..."}, {"thread": 3, "text": "..."}]}
//	GET  /v1/stats
//	GET  /healthz
//
// cmd/dehealthd wraps this entry point with flags.
func Serve(pw *PreparedWorld, opt ServeOptions) error {
	addr := opt.Addr
	if addr == "" {
		addr = ":8700"
	}
	return NewServer(pw, opt).ListenAndServe(addr)
}

// Linkage runs NameLink + AvatarLink against an external directory,
// aggregates dossiers and enriches them from the people-search service
// (the full §VI pipeline).
func Linkage(forum *Dataset, dir *linkage.Directory) *LinkageResult {
	model := linkage.NewEntropyModel(2)
	model.Train(dir.Usernames())
	av := linkage.AvatarLink(forum, dir, linkage.DefaultAvatarLinkConfig())
	nm := linkage.NameLink(forum, dir, model, linkage.DefaultNameLinkConfig())
	dossiers := linkage.Aggregate(forum, dir, av, nm)
	linkage.EnrichFromPeopleSearch(dossiers, dir, "whitepages")
	return &LinkageResult{
		AvatarLinks: av,
		NameLinks:   nm,
		Dossiers:    dossiers,
	}
}
