// Package dehealth is the public API of the De-Health reproduction — the
// online-health-data de-anonymization framework of Ji et al., "De-Health:
// All Your Online Health Information Are Belong to Us" (ICDE 2020).
//
// The package exposes the full pipeline:
//
//   - dataset handling (the corpus model, JSON I/O, closed/open-world
//     splits) and a calibrated synthetic health-forum generator standing in
//     for the paper's WebMD/HealthBoards crawls;
//   - the two-phase De-Health attack: structural Top-K candidate selection
//     over User-Data-Attribute graphs, then classifier-based refined DA with
//     open-world handling (false addition, mean verification);
//   - the §VI linkage attack (NameLink and AvatarLink) connecting forum
//     accounts to external-service profiles;
//   - the §IV theoretical bounds on re-identifiability.
//
// Quick start:
//
//	world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: 500, HBUsers: 800, Seed: 1})
//	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 7)
//	res, err := dehealth.Attack(split.Anon, split.Aux, dehealth.DefaultOptions())
//	// res.Mapping[u] is the de-anonymized auxiliary user of anonymized user u (or -1).
package dehealth

import (
	"fmt"
	"math/rand"

	"dehealth/internal/anonymize"
	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/linkage"
	"dehealth/internal/ml"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// Dataset is a health forum's data: users, threads and posts.
type Dataset = corpus.Dataset

// Split is an anonymized/auxiliary partition with evaluation ground truth.
type Split = corpus.Split

// LoadDataset reads a JSON dataset written by (*Dataset).Save.
func LoadDataset(path string) (*Dataset, error) { return corpus.Load(path) }

// SplitClosedWorld partitions each user's posts, sending auxFrac of them to
// the auxiliary side (§V-A methodology).
func SplitClosedWorld(d *Dataset, auxFrac float64, seed int64) *Split {
	return corpus.SplitClosedWorld(d, auxFrac, rand.New(rand.NewSource(seed)))
}

// SplitOpenWorld builds an open-world partition with the given overlapping
// user ratio (§V-B methodology, footnote 10).
func SplitOpenWorld(d *Dataset, overlapRatio float64, seed int64) *Split {
	return corpus.OpenWorldOverlap(d, overlapRatio, rand.New(rand.NewSource(seed)))
}

// WorldConfig sizes a synthetic evaluation world.
type WorldConfig struct {
	// WebMDUsers and HBUsers are account counts for the two forums.
	WebMDUsers, HBUsers int
	// OverlapFrac is the fraction of WebMD users who also hold an HB
	// account (default 0.2).
	OverlapFrac float64
	// Seed makes the world reproducible.
	Seed int64
}

// World is a generated evaluation world: two forums over a shared person
// universe plus the external-service directory for linkage attacks.
type World struct {
	WebMD, HB *Dataset
	Directory *linkage.Directory
	Universe  *synth.Universe
}

// GenerateWorld builds a synthetic world calibrated to the paper's corpus
// statistics (Fig.1, Fig.2, Fig.7).
func GenerateWorld(cfg WorldConfig) *World {
	if cfg.OverlapFrac == 0 {
		cfg.OverlapFrac = 0.2
	}
	overlap := int(cfg.OverlapFrac * float64(cfg.WebMDUsers))
	uSize := cfg.WebMDUsers + cfg.HBUsers - overlap + cfg.WebMDUsers/2
	u := synth.NewUniverse(uSize, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	wm, hm := synth.OverlappingMembers(u, cfg.WebMDUsers, cfg.HBUsers, overlap, rng)
	return &World{
		WebMD:     synth.Generate(synth.WebMDLike(cfg.WebMDUsers, cfg.Seed+2), u, wm),
		HB:        synth.Generate(synth.HBLike(cfg.HBUsers, cfg.Seed+3), u, hm),
		Directory: synth.SocialDirectory(u, synth.DefaultServices(), cfg.Seed+4),
		Universe:  u,
	}
}

// Classifier selects the refined-DA learning algorithm.
type Classifier string

// Supported classifiers.
const (
	KNN  Classifier = "knn"  // k-nearest neighbors (k = 3)
	NN   Classifier = "nn"   // nearest neighbor
	SMO  Classifier = "smo"  // SVM via sequential minimal optimization
	RLSC Classifier = "rlsc" // regularized least squares classification
	NB   Classifier = "nb"   // Gaussian naive Bayes
)

// Scheme selects the open-world handling of refined DA.
type Scheme string

// Supported open-world schemes.
const (
	Closed           Scheme = "closed"
	FalseAddition    Scheme = "false-addition"
	MeanVerification Scheme = "mean-verification"
	SigmaVerify      Scheme = "sigma-verification"
	Distractorless   Scheme = "distractorless"
)

// Options parametrizes an Attack run. Zero values take the paper defaults.
type Options struct {
	// C1, C2, C3 weight the degree, distance and attribute similarities
	// (paper default 0.05 / 0.05 / 0.9).
	C1, C2, C3 float64
	// Landmarks is ħ, the top-degree landmark count (default 50).
	Landmarks int
	// K is the Top-K candidate set size (default 10).
	K int
	// GraphMatching switches candidate selection from direct selection to
	// repeated maximum-weight bipartite matching.
	GraphMatching bool
	// Filter enables the Algorithm 2 threshold-vector filtering.
	Filter bool
	// Epsilon and L parametrize the filter (defaults 0.01, 10).
	Epsilon float64
	L       int
	// Classifier picks the refined-DA learner (default SMO).
	Classifier Classifier
	// Scheme picks the open-world handling (default Closed).
	Scheme Scheme
	// R is the mean-verification margin (default 0.25).
	R float64
	// Sigma is the sigma-verification threshold (default 1.0).
	Sigma float64
	// CosineThreshold is the distractorless acceptance level (default 0.98).
	CosineThreshold float64
	// MaxBigrams caps the POS-bigram feature block (default 300).
	MaxBigrams int
	// Seed drives all randomized components.
	Seed int64
}

// DefaultOptions returns the paper's default attack configuration.
func DefaultOptions() Options {
	return Options{
		C1: 0.05, C2: 0.05, C3: 0.9,
		Landmarks:  50,
		K:          10,
		Classifier: SMO,
		Scheme:     Closed,
		R:          0.25,
		Epsilon:    0.01,
		L:          10,
	}
}

// Result is the outcome of a full two-phase attack.
type Result struct {
	// Mapping[u] is the auxiliary user that anonymized user u was
	// de-anonymized to, or -1 for u -> ⊥.
	Mapping []int
	// TopK is the first-phase outcome (candidate sets and true-mapping
	// ranks when ground truth was supplied).
	TopK *core.TopKResult
	// Pipeline exposes the underlying artifacts (UDA graphs, scorer) for
	// inspection.
	Pipeline *core.Pipeline
}

func (o Options) classifierFactory() (func() ml.Classifier, error) {
	switch o.Classifier {
	case KNN, "":
		return func() ml.Classifier { return ml.NewKNN(3) }, nil
	case NN:
		return func() ml.Classifier { return ml.NN() }, nil
	case SMO:
		return func() ml.Classifier { return ml.NewSMO(ml.SMOConfig{C: 1, Seed: o.Seed}) }, nil
	case RLSC:
		return func() ml.Classifier { return ml.NewRLSC(1) }, nil
	case NB:
		return func() ml.Classifier { return ml.NewNaiveBayes() }, nil
	default:
		return nil, fmt.Errorf("dehealth: unknown classifier %q", o.Classifier)
	}
}

func (o Options) scheme() (core.OpenWorldScheme, error) {
	switch o.Scheme {
	case Closed, "":
		return core.ClosedWorld, nil
	case FalseAddition:
		return core.FalseAddition, nil
	case MeanVerification:
		return core.MeanVerification, nil
	case SigmaVerify:
		return core.SigmaVerification, nil
	case Distractorless:
		return core.DistractorlessVerification, nil
	default:
		return 0, fmt.Errorf("dehealth: unknown scheme %q", o.Scheme)
	}
}

// Attack runs the full two-phase De-Health attack: build UDA graphs, select
// Top-K candidate sets, optionally filter, and run refined DA. trueMapping
// (optional, evaluation only) can be supplied via AttackWithTruth.
func Attack(anon, aux *Dataset, opt Options) (*Result, error) {
	return AttackWithTruth(anon, aux, opt, nil)
}

// AttackWithTruth is Attack plus ground truth for rank bookkeeping; the
// truth never influences the attack itself.
func AttackWithTruth(anon, aux *Dataset, opt Options, trueMapping map[int]int) (*Result, error) {
	if opt.K <= 0 {
		opt.K = 10
	}
	if opt.C1 == 0 && opt.C2 == 0 && opt.C3 == 0 {
		opt.C1, opt.C2, opt.C3 = 0.05, 0.05, 0.9
	}
	if opt.Landmarks <= 0 {
		opt.Landmarks = 50
	}
	mkClf, err := opt.classifierFactory()
	if err != nil {
		return nil, err
	}
	scheme, err := opt.scheme()
	if err != nil {
		return nil, err
	}

	simCfg := similarity.Config{C1: opt.C1, C2: opt.C2, C3: opt.C3, Landmarks: opt.Landmarks}
	p := core.NewPipeline(anon, aux, simCfg, opt.MaxBigrams)

	sel := core.DirectSelection
	if opt.GraphMatching {
		sel = core.GraphMatchingSelection
	}
	tk := p.TopK(opt.K, sel, trueMapping)
	if opt.Filter {
		p.Filter(tk, core.FilterConfig{Epsilon: opt.Epsilon, L: opt.L})
	}
	sigma := opt.Sigma
	if sigma == 0 {
		sigma = 1.0
	}
	cosT := opt.CosineThreshold
	if cosT == 0 {
		cosT = 0.98
	}
	res, err := p.RefinedDA(tk, core.RefineOptions{
		NewClassifier:   mkClf,
		Scheme:          scheme,
		R:               opt.R,
		Sigma:           sigma,
		CosineThreshold: cosT,
		Seed:            opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Mapping: res.Mapping, TopK: tk, Pipeline: p}, nil
}

// ScrubLevel selects how aggressively the style-scrubbing defense rewrites
// posts before release (see internal/anonymize).
type ScrubLevel = anonymize.Level

// Scrub levels, from no-op to aggressive character-class stripping.
const (
	ScrubOff        = anonymize.LevelOff
	ScrubLight      = anonymize.LevelLight
	ScrubStandard   = anonymize.LevelStandard
	ScrubAggressive = anonymize.LevelAggressive
)

// Defend applies the style-scrubbing anonymizer to a dataset before
// release — the defensive counterpart of the attack, addressing the open
// problem the paper's §VII describes.
func Defend(d *Dataset, level ScrubLevel) *Dataset {
	return anonymize.ScrubDataset(d, level)
}

// LinkageResult is the outcome of the §VI linkage attack.
type LinkageResult struct {
	// AvatarLinks and NameLinks are the raw per-technique links.
	AvatarLinks, NameLinks []linkage.Link
	// Dossiers are the aggregated, cross-validated per-victim profiles.
	Dossiers []linkage.Dossier
}

// Linkage runs NameLink + AvatarLink against an external directory,
// aggregates dossiers and enriches them from the people-search service
// (the full §VI pipeline).
func Linkage(forum *Dataset, dir *linkage.Directory) *LinkageResult {
	model := linkage.NewEntropyModel(2)
	model.Train(dir.Usernames())
	av := linkage.AvatarLink(forum, dir, linkage.DefaultAvatarLinkConfig())
	nm := linkage.NameLink(forum, dir, model, linkage.DefaultNameLinkConfig())
	dossiers := linkage.Aggregate(forum, dir, av, nm)
	linkage.EnrichFromPeopleSearch(dossiers, dir, "whitepages")
	return &LinkageResult{
		AvatarLinks: av,
		NameLinks:   nm,
		Dossiers:    dossiers,
	}
}
