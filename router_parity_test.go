// Distributed parity: the acceptance contract of the router tier. A
// router scatter-gathering over 1, 2 and 4 shard servers — real
// dehealth.NewServer instances, each booted from its own snapshot slice —
// must answer QueryUser and QueryBatch bit-identically to the
// single-process PreparedWorld fan-out, in exact, pruned and approximate
// modes alike. Every float crosses two JSON hops (router → shard server →
// router); Go marshals float64 round-trip exactly, so bit-identity is
// required, not approximated.

package dehealth

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"dehealth/internal/router"
)

// routerOver boots one serve.Server per slice world and a router over
// them, in shard order.
func routerOver(t *testing.T, slices []*PreparedWorld, approxKnobs ApproxConfig) *router.Router {
	t.Helper()
	topo := make([][]string, len(slices))
	for i, sw := range slices {
		opt := sw.PreparedOptions()
		opt.Approx.Theta = approxKnobs.Theta
		opt.Approx.Budget = approxKnobs.Budget
		srv := NewServer(sw, ServeOptions{FlushInterval: time.Millisecond, Attack: opt})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			hs.Close()
			_ = srv.Close()
		})
		topo[i] = []string{hs.URL}
	}
	r, err := router.New(router.Config{Shards: topo, HealthInterval: -1})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRouterParity(t *testing.T) {
	const users, k = 20, 5
	modes := []struct {
		name   string
		prune  bool
		approx ApproxConfig
	}{
		{name: "exact"},
		{name: "pruned", prune: true},
		{name: "approx", approx: ApproxConfig{Enabled: true, Theta: 0.6}},
	}
	for mi, mode := range modes {
		for _, shards := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s shards=%d", mode.name, shards)

			// Reference: the single-process world at the same shard count.
			w := GenerateWorld(WorldConfig{WebMDUsers: users, HBUsers: users, Seed: int64(8000 + 100*mi + shards)})
			split := SplitClosedWorld(w.WebMD, 0.5, int64(8001+100*mi+shards))
			opt := snapOptions(shards, mode.prune)
			opt.Approx = mode.approx
			pw := PrepareWorld(split.Anon, split.Aux, opt)
			wantSingle, wantBatch := worldAnswers(t, pw, k, opt)

			// Distributed: slice servers under a router.
			slices := loadSlices(t, pw, t.TempDir())
			if len(slices) != shards {
				t.Fatalf("%s: %d slices", label, len(slices))
			}
			r := routerOver(t, slices, mode.approx)

			anon, _ := pw.Sizes()
			allUsers := make([]int, anon)
			gotSingle := make([][]Candidate, anon)
			for u := 0; u < anon; u++ {
				allUsers[u] = u
				res, err := r.QueryUser(context.Background(), u, k, mode.approx.Enabled)
				if err != nil {
					t.Fatalf("%s: router QueryUser(%d): %v", label, u, err)
				}
				if res.Partial {
					t.Fatalf("%s: healthy fleet answered partially (missing %v)", label, res.Missing)
				}
				gotSingle[u] = res.Candidates
			}
			sameCandidates(t, label+" QueryUser", wantSingle, gotSingle)

			br, err := r.QueryBatch(context.Background(), allUsers, k, mode.approx.Enabled)
			if err != nil {
				t.Fatalf("%s: router QueryBatch: %v", label, err)
			}
			if br.Partial {
				t.Fatalf("%s: batch answered partially (missing %v)", label, br.Missing)
			}
			sameCandidates(t, label+" QueryBatch", wantBatch, br.Results)
		}
	}
}
